// Incast: fire a synchronized burst of query flows at one receiver and
// watch how the three AQMs handle it — the paper's Figure 10/11 scenario.
// ECN♯'s instantaneous marking tames the burst (no drops); CoDel reacts a
// full interval late and overflows the buffer.
//
// Run with:
//
//	go run ./examples/incast
//
// With -trace, the ECN♯ run is repeated with an event tracer attached: the
// full event stream goes to the given JSONL file and the ECN♯ marks on the
// bottleneck port are replayed on stdout, showing Algorithm 1's
// conservative cadence — the gap between consecutive persistent marks
// shrinking as pst_interval/sqrt(count) while the standing queue persists:
//
//	go run ./examples/incast -trace incast.jsonl
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"ecnsharp/internal/aqm"
	"ecnsharp/internal/core"
	"ecnsharp/internal/metrics"
	"ecnsharp/internal/sim"
	"ecnsharp/internal/topology"
	"ecnsharp/internal/trace"
	"ecnsharp/internal/transport"
	"ecnsharp/internal/workload"
)

const (
	senders  = 16
	receiver = 16
	fanout   = 120

	rtt90       = 220 * sim.Microsecond
	pstTarget   = 10 * sim.Microsecond
	pstInterval = 240 * sim.Microsecond
)

// run executes one incast under the given AQM; when tr is non-nil it is
// attached to the whole network before any flow starts. It returns the
// network so callers can locate the bottleneck port.
func run(name string, newAQM func(int) aqm.AQM, tr trace.Tracer) *topology.Net {
	net := topology.NewStar(senders+1, topology.Options{
		Link: topology.LinkParams{
			RateBps:     topology.TenGbps,
			PropDelay:   sim.Microsecond,
			BufferBytes: 600 * 1500,
		},
		NewAQM: newAQM,
	})
	eng := net.Engine
	if tr != nil {
		net.AttachTracer(tr)
	}

	cfg := transport.DefaultConfig()
	cfg.InitCwndSegments = 2

	// Four long-lived flows build whatever standing queue the AQM allows.
	for i := 0; i < 4; i++ {
		transport.StartFlow(eng, cfg, net.Host(i), net.Host(receiver),
			uint64(i+1), 1<<40, 0, nil)
	}

	// The query burst at t=50ms.
	rng := rand.New(rand.NewSource(7))
	collector := metrics.NewFCTCollector()
	specs := workload.QueryFlows(rng, workload.QueryConfig{
		Senders:  repeat(senders, fanout),
		Receiver: receiver,
		At:       50 * sim.Millisecond,
		MinBytes: 3_000,
		MaxBytes: 60_000,
	})
	for i, spec := range specs {
		spec := spec
		transport.StartFlow(eng, cfg, net.Host(spec.Src), net.Host(receiver),
			uint64(100+i), spec.Size, spec.Start,
			func(f *transport.Flow) { collector.Record(f.Size, f.FCT, true) })
	}

	eng.RunUntil(150 * sim.Millisecond)

	eg := net.EgressTo(receiver).Egress
	s := collector.Stats()
	fmt.Printf("%-10s drops %4d | query FCT avg %7.1f us p99 %7.1f us (%d/%d done)\n",
		name, eg.Drops, s.QueryAvg, s.QueryP99, s.QueryCount, fanout)
	return net
}

func repeat(hosts, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i % hosts
	}
	return out
}

func newECNSharp(int) aqm.AQM {
	return aqm.MustNewECNSharp(core.Params{
		InsTarget:   rtt90,
		PstTarget:   pstTarget,
		PstInterval: pstInterval,
	})
}

// tracedRun repeats the ECN♯ incast with a tracer attached: the full event
// stream goes to path as JSONL, while a ring recorder keeps the mark events
// for the cadence replay below.
func tracedRun(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incast:", err)
		os.Exit(1)
	}
	jsonl := trace.NewJSONLWriter(f)
	marks := trace.NewRingRecorder(1 << 16).SetMask(trace.MaskOf(trace.ECNMark))

	fmt.Println()
	net := run("ECN# (traced)", newECNSharp, trace.NewTee(jsonl, marks))
	if err := jsonl.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "incast:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("\nfull event trace written to %s\n", path)

	reportCadence(marks.Events(), net.PortTo(receiver))
}

// reportCadence replays the bottleneck port's persistent marks, printing
// the interval to the previous one next to Algorithm 1's scheduled
// pst_interval/sqrt(count) — the shrinking cadence of §3.3.
func reportCadence(events []trace.Event, port int) {
	var inst, pst int
	var pstAts []int64
	for _, e := range events {
		if e.Port != port {
			continue
		}
		switch e.Mark {
		case trace.MarkInstantaneous:
			inst++
		case trace.MarkPersistent:
			pst++
			pstAts = append(pstAts, e.At)
		}
	}
	fmt.Printf("bottleneck port %d: %d instantaneous marks, %d persistent marks\n",
		port, inst, pst)
	if len(pstAts) < 2 {
		return
	}

	fmt.Println("\npersistent-marking cadence (Algorithm 1):")
	fmt.Println("   k        t (ms)   gap to prev   pst_interval/sqrt(k)")
	show := len(pstAts)
	if show > 12 {
		show = 12
	}
	for k := 1; k < show; k++ {
		gap := sim.Time(pstAts[k] - pstAts[k-1])
		sched := sim.Time(float64(pstInterval) / math.Sqrt(float64(k+1)))
		fmt.Printf("  %2d  %12.3f  %12v  %12v\n",
			k+1, sim.Time(pstAts[k]).Seconds()*1e3, gap, sched)
	}
	if show < len(pstAts) {
		fmt.Printf("  ... %d more persistent marks\n", len(pstAts)-show)
	}
	fmt.Println("\nthe gap tracks the shrinking schedule while the standing queue persists")
}

func main() {
	tracePath := flag.String("trace", "", "repeat the ECN# run traced, writing a JSONL event trace to this file")
	flag.Parse()

	fmt.Printf("incast: %d concurrent query flows into one 10G port, 600-packet buffer\n\n", fanout)
	run("RED-Tail", func(int) aqm.AQM {
		return aqm.NewREDInstantBytes(core.ThresholdBytes(1, topology.TenGbps, rtt90))
	}, nil)
	run("CoDel", func(int) aqm.AQM {
		return aqm.NewCoDel(10*sim.Microsecond, 240*sim.Microsecond)
	}, nil)
	run("ECN#", newECNSharp, nil)
	fmt.Println("\nCoDel should drop packets; ECN# and RED-Tail should not.")

	if *tracePath != "" {
		tracedRun(*tracePath)
	}
}

// Tofino: run ECN♯ through the dataplane model of §4 — match-action
// tables over 32-bit-constrained registers — and show (1) the resource
// census the paper reports, (2) Algorithm 2's emulated clock surviving a
// 22-bit wrap, and (3) the constrained program agreeing with the
// reference Algorithm 1 packet for packet.
//
// Run with:
//
//	go run ./examples/tofino
package main

import (
	"fmt"
	"math/rand"

	"ecnsharp/internal/core"
	"ecnsharp/internal/sim"
	"ecnsharp/internal/tofino"
)

func main() {
	params := core.Params{
		InsTarget:   200 * sim.Microsecond,
		PstTarget:   85 * sim.Microsecond,
		PstInterval: 200 * sim.Microsecond,
	}
	p4, err := tofino.NewECNSharpP4(128, params, tofino.WrapLT)
	if err != nil {
		panic(err)
	}

	c := p4.Census()
	fmt.Println("ECN# on the Tofino model — resource census (paper §4: 7 tables,")
	fmt.Println("5x32-bit + 2x64-bit register arrays, <10 entries):")
	fmt.Printf("  tables: %d, entries: %d, reg32 arrays: %d, reg64 arrays: %d, %d bytes\n\n",
		c.Tables, c.TableEntries, c.Registers32, c.Registers64, c.RegisterBytes)

	fmt.Println("pipeline tables:")
	for i, t := range p4.Tables() {
		fmt.Printf("  %d. %s\n", i+1, t.Name)
	}

	// Cross a 22-bit (≈4.19s) wrap of the emulated clock mid-episode and
	// keep marking correctly.
	fmt.Println("\ndriving a persistent queue across the 4.19s clock wrap:")
	rng := rand.New(rand.NewSource(1))
	marks := 0
	n := 0
	start := uint64(4_190_000_000) // just before the 2^22 µs wrap
	for ns := start; ns < start+20_000_000; ns += 1200 + uint64(rng.Intn(200)) {
		reason, err := p4.ProcessPacket(0, ns, 120*sim.Microsecond)
		if err != nil {
			panic(err)
		}
		if reason != core.NotMarked {
			marks++
		}
		n++
	}
	inst, pst := p4.Stats(0)
	fmt.Printf("  %d packets across the wrap: %d marks (%d instantaneous, %d persistent)\n",
		n, marks, inst, pst)

	// Violating the single-access rule is caught at runtime.
	reg := tofino.NewReg32("demo", 1)
	ctx := tofino.NewPacketContext()
	if _, err := reg.Access(ctx, 0, func(cur uint32) (uint32, uint32) { return cur + 1, 0 }); err != nil {
		panic(err)
	}
	if _, err := reg.Access(ctx, 0, func(cur uint32) (uint32, uint32) { return cur + 1, 0 }); err != nil {
		fmt.Printf("\nsecond access to one register in one pass is rejected:\n  %v\n", err)
	}
}

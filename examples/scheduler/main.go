// Scheduler: ECN♯ under DWRR with three weighted service queues — the
// paper's Figure 13 scenario. Three long-lived flows in classes weighted
// 2:1:1 start 50 ms apart; the goodput shares must follow the weights at
// every phase, showing that sojourn-time marking composes with arbitrary
// packet schedulers.
//
// Run with:
//
//	go run ./examples/scheduler
package main

import (
	"fmt"

	"ecnsharp/internal/aqm"
	"ecnsharp/internal/core"
	"ecnsharp/internal/metrics"
	"ecnsharp/internal/queue"
	"ecnsharp/internal/sim"
	"ecnsharp/internal/topology"
	"ecnsharp/internal/transport"
)

func main() {
	weights := []int{2, 1, 1}
	params := core.Params{
		InsTarget:   220 * sim.Microsecond,
		PstTarget:   10 * sim.Microsecond,
		PstInterval: 240 * sim.Microsecond,
	}
	// The topology constructor owns the engine; net.Engine is the serial
	// engine it built (pass Shards in Options for the partitioned runtime).
	net := topology.NewStar(4, topology.Options{
		Link: topology.LinkParams{
			RateBps:     topology.TenGbps,
			PropDelay:   sim.Microsecond,
			BufferBytes: 600 * 1500,
		},
		NumQueues: len(weights),
		NewSched:  func() queue.Scheduler { return queue.NewDWRR(weights) },
		NewAQM:    func(int) aqm.AQM { return aqm.MustNewECNSharp(params) },
	})
	eng := net.Engine

	const phase = 50 * sim.Millisecond
	var meters [3]*metrics.GoodputMeter
	for i := 0; i < 3; i++ {
		cfg := transport.DefaultConfig()
		cfg.Class = i
		fl := transport.StartFlow(eng, cfg, net.Host(i), net.Host(3),
			uint64(i+1), 1<<40, sim.Time(i)*phase, nil)
		recv := fl.Receiver
		meters[i] = metrics.NewGoodputMeter(eng,
			func() int64 { return recv.BytesInOrder }, 0, 3*phase, 10*sim.Millisecond)
	}
	eng.RunUntil(3 * phase)

	fmt.Println("goodput (Gbps) per 10ms window; flows start at 0/50/100 ms, DWRR weights 2:1:1")
	fmt.Printf("%8s  %8s  %8s  %8s\n", "t(ms)", "flow1", "flow2", "flow3")
	for i := range meters[0].Series {
		fmt.Printf("%8.0f", meters[0].Series[i].At.Seconds()*1000)
		for f := 0; f < 3; f++ {
			g := 0.0
			if i < len(meters[f].Series) {
				g = meters[f].Series[i].Gbps
			}
			fmt.Printf("  %8.2f", g)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected phases: ~9.6 | ~6.4/3.2 | ~4.8/2.4/2.4 (paper Fig 13a)")
}

// Quickstart: build an 8-host star testbed, inject a web-search workload
// with 3× RTT variation, and compare ECN♯ against the current practice
// (DCTCP-RED with a 90th-percentile-RTT threshold).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"ecnsharp/internal/experiments"
	"ecnsharp/internal/rttvar"
	"ecnsharp/internal/sim"
	"ecnsharp/internal/topology"
	"ecnsharp/internal/workload"
)

func main() {
	// The operator workflow from the paper: measure the base-RTT
	// distribution (here: 3× variation, 70–210 µs), then derive marking
	// thresholds from its statistics via Equation 1/2.
	rtt := rttvar.NewVariation(70*sim.Microsecond, 3)
	tail, _, sharp := experiments.DeriveSchemes(rtt, topology.TenGbps)

	fmt.Printf("RTT distribution: min=%v mean=%v p90=%v max=%v\n",
		rtt.Min, rtt.Mean(), rtt.Percentile(90), rtt.Max)
	fmt.Printf("derived DCTCP-RED-Tail threshold: %d KB\n", tail.KBytes/1000)
	fmt.Printf("derived ECN# params: ins_target=%v pst_target=%v pst_interval=%v\n\n",
		sharp.Params.InsTarget, sharp.Params.PstTarget, sharp.Params.PstInterval)

	senders := []int{0, 1, 2, 3, 4, 5, 6}
	flowGen := func(rng *rand.Rand) []workload.FlowSpec {
		return workload.PoissonFlows(rng, workload.PoissonConfig{
			SizeDist:    workload.WebSearchCDF,
			Load:        0.6,
			CapacityBps: topology.TenGbps,
			Pairs:       workload.StarPairs(senders, 7),
			FlowCount:   300,
		})
	}

	for _, scheme := range []experiments.Scheme{tail, sharp} {
		r := experiments.Run(experiments.RunConfig{
			Seed:    42,
			Topo:    experiments.TopoStar,
			Hosts:   8,
			Scheme:  scheme,
			RTT:     &rtt,
			FlowGen: flowGen,
		})
		s := r.Stats
		fmt.Printf("%-16s overall avg %8.1f us | short avg %7.1f us p99 %8.1f us | large avg %9.1f us\n",
			scheme.Label, s.OverallAvg, s.ShortAvg, s.ShortP99, s.LargeAvg)
	}
	fmt.Println("\nECN# should show clearly lower short-flow FCT at similar large-flow FCT.")
}

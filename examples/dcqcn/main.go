// DCQCN: the §3.5 discussion made runnable. Rate-based DCQCN-lite
// endpoints (RDMA-style: paced sending, α-driven cuts on congestion
// notifications, staged rate increase) run against three switch marking
// schemes. Cut-off marking — ECN♯ as published — synchronizes every
// sender's cuts and wrecks utilization; the probabilistic variant the
// paper sketches restores it while keeping the persistent-queue control.
//
// Run with:
//
//	go run ./examples/dcqcn
package main

import (
	"fmt"
	"math/rand"

	"ecnsharp/internal/aqm"
	"ecnsharp/internal/core"
	"ecnsharp/internal/sim"
	"ecnsharp/internal/topology"
	"ecnsharp/internal/transport"
)

func run(name string, newAQM func(int) aqm.AQM) {
	net := topology.NewStar(5, topology.Options{
		Link: topology.LinkParams{
			RateBps:     topology.TenGbps,
			PropDelay:   2 * sim.Microsecond,
			BufferBytes: 600 * 1500,
		},
		NewAQM: newAQM,
	})
	eng := net.Engine
	cfg := transport.DefaultDCQCNConfig()
	var recvs []*transport.Receiver
	for i := 0; i < 4; i++ {
		_, r := transport.StartDCQCNFlow(eng, cfg, net.Host(i), net.Host(4),
			uint64(i+1), 1<<40, 0, nil)
		recvs = append(recvs, r)
	}
	eng.RunUntil(100 * sim.Millisecond)
	base := make([]int64, 4)
	for i, r := range recvs {
		base[i] = r.BytesInOrder
	}
	eng.RunUntil(200 * sim.Millisecond)

	var sum, sumSq float64
	for i, r := range recvs {
		g := float64(r.BytesInOrder-base[i]) * 8 / 0.1 / 1e9
		sum += g
		sumSq += g * g
	}
	fmt.Printf("%-22s goodput %5.2f Gbps | Jain %.3f | drops %d\n",
		name, sum, sum*sum/(4*sumSq), net.EgressTo(4).Egress.Drops)
}

func main() {
	fmt.Println("four DCQCN-lite flows sharing a 10G port, steady-state window:")
	params := core.Params{
		InsTarget:   220 * sim.Microsecond,
		PstTarget:   10 * sim.Microsecond,
		PstInterval: 240 * sim.Microsecond,
	}
	run("ECN# cut-off", func(int) aqm.AQM { return aqm.MustNewECNSharp(params) })

	rng := rand.New(rand.NewSource(1))
	run("RED probabilistic", func(int) aqm.AQM {
		return aqm.NewRED(5*1500, 200*1500, 0.25, rng)
	})
	rng2 := rand.New(rand.NewSource(1))
	run("ECN#-prob (§3.5)", func(int) aqm.AQM {
		a, err := aqm.NewECNSharpProb(params,
			6*sim.Microsecond, 240*sim.Microsecond, 0.25, rng2)
		if err != nil {
			panic(err)
		}
		return a
	})
	fmt.Println("\ncut-off marking should lose ~15-25% utilization; the probabilistic variants should not.")
}

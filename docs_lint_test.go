// Documentation lints, run by the CI docs job: exported identifiers in the
// observability-critical packages must carry godoc comments, and intra-repo
// markdown links must resolve. Pure analysis — no simulation runs here.
package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docAuditPackages are the packages whose godoc completeness is enforced
// (the trace subsystem and the layers it instruments, plus the service
// surface — the daemon, its cache, and the sweep-spec layer they share).
var docAuditPackages = []string{
	"internal/trace",
	"internal/queue",
	"internal/aqm",
	"internal/harness",
	"internal/cache",
	"internal/service",
	"internal/experiments",
	"internal/tune",
}

// TestExportedDocComments fails for every exported top-level identifier in
// the audited packages that lacks a doc comment, and for every single-name
// declaration whose comment does not mention the identifier in its first
// sentence (grouped const/var blocks may share one block comment).
func TestExportedDocComments(t *testing.T) {
	fset := token.NewFileSet()
	for _, dir := range docAuditPackages {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			auditFile(t, fset, path, f)
		}
	}
}

func auditFile(t *testing.T, fset *token.FileSet, path string, f *ast.File) {
	t.Helper()
	report := func(pos token.Pos, id, problem string) {
		p := fset.Position(pos)
		t.Errorf("%s:%d: exported %s %s", path, p.Line, id, problem)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			checkDoc(report, d.Pos(), d.Name.Name, d.Doc)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					doc := s.Doc
					if doc == nil {
						doc = d.Doc
					}
					checkDoc(report, s.Pos(), s.Name.Name, doc)
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if !n.IsExported() {
							continue
						}
						// A const/var group may share the block's comment.
						if s.Doc == nil && s.Comment == nil && d.Doc == nil {
							report(n.Pos(), n.Name, "has no doc comment")
						}
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not part of the package's godoc).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if idx, ok := typ.(*ast.IndexExpr); ok {
		typ = idx.X
	}
	id, ok := typ.(*ast.Ident)
	return !ok || id.IsExported()
}

// checkDoc enforces godoc style: a comment exists and its first sentence
// names the identifier (leading articles allowed).
func checkDoc(report func(token.Pos, string, string), pos token.Pos, name string, doc *ast.CommentGroup) {
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		report(pos, name, "has no doc comment")
		return
	}
	text := strings.TrimSpace(doc.Text())
	for _, article := range []string{"A ", "An ", "The "} {
		text = strings.TrimPrefix(text, article)
	}
	if !strings.HasPrefix(text, name) {
		report(pos, name, "doc comment does not start with the identifier name")
	}
}

// mdLink matches inline markdown links [text](target). Images and
// reference-style links are out of scope.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks fails for every intra-repo markdown link whose target
// file does not exist. External (http/mailto) and pure-anchor links are
// skipped; anchors on file links are stripped (file existence only).
func TestMarkdownLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found")
	}
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", md, m[1], err)
			}
		}
	}
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkXxx runs the corresponding experiment at
// SmokeScale (so the full suite finishes in minutes) and prints the
// resulting rows once — the same rows/series the paper reports. Use
// cmd/ecnsharp-bench with -scale quick or -scale full for denser grids.
//
// The reported ns/op is the wall time of one full experiment regeneration.
package main

import (
	"fmt"
	"sync"
	"testing"

	"ecnsharp/internal/experiments"
)

var printed sync.Map

// runExperiment executes the experiment b.N times, printing its tables on
// the first run only.
func runExperiment(b *testing.B, id string) {
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	sc := experiments.SmokeScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(sc)
		if _, done := printed.LoadOrStore(id, true); !done {
			b.StopTimer()
			for _, tb := range tables {
				fmt.Println(tb)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkTable1RTTVariations regenerates Table 1 / Figure 1: RTT
// statistics of the five processing-component combinations.
func BenchmarkTable1RTTVariations(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig2ThresholdSweep regenerates Figure 2: the instantaneous
// marking threshold dilemma under 3× RTT variation.
func BenchmarkFig2ThresholdSweep(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3VariationSweep regenerates Figure 3: larger RTT variations
// widening the avg-vs-tail threshold gap.
func BenchmarkFig3VariationSweep(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig5FlowSizeCDF regenerates Figure 5: the web-search and
// data-mining flow-size CDFs.
func BenchmarkFig5FlowSizeCDF(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6WebSearch regenerates Figure 6: testbed FCT statistics
// under the web-search workload (4 schemes × loads, normalized to Tail).
func BenchmarkFig6WebSearch(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7DataMining regenerates Figure 7: the same sweep under the
// data-mining workload.
func BenchmarkFig7DataMining(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8LargerVariation regenerates Figure 8: ECN♯ vs Tail at
// 3×/4×/5× RTT variation.
func BenchmarkFig8LargerVariation(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9LeafSpine regenerates Figure 9: the 128-host leaf-spine
// simulations.
func BenchmarkFig9LeafSpine(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10QueueOccupancy regenerates Figure 10: the microscopic
// queue view around a 100-flow incast burst.
func BenchmarkFig10QueueOccupancy(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11IncastFanout regenerates Figure 11: query FCT vs incast
// fanout.
func BenchmarkFig11IncastFanout(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12Sensitivity regenerates Figure 12: ECN♯ parameter
// sensitivity.
func BenchmarkFig12Sensitivity(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13DWRR regenerates Figure 13: scheduler preservation and
// ECN♯ vs TCN under DWRR.
func BenchmarkFig13DWRR(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkAlg2TimeEmulation regenerates the §4 artifacts: Algorithm 2
// time emulation, the resource census, and P4-vs-reference equivalence.
func BenchmarkAlg2TimeEmulation(b *testing.B) { runExperiment(b, "alg2") }

// BenchmarkAblation regenerates the design-choice ablation: knocking out
// the instantaneous condition, the persistent condition, or the sqrt
// marking ramp, on the Figure-10 incast scenario.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkProbExtension regenerates the §3.5 extension comparison:
// cut-off vs probabilistic instantaneous marking.
func BenchmarkProbExtension(b *testing.B) { runExperiment(b, "prob") }

// BenchmarkBufferModels regenerates the buffer-architecture comparison:
// static per-port vs shared pool with dynamic thresholds.
func BenchmarkBufferModels(b *testing.B) { runExperiment(b, "buffer") }

// BenchmarkDCQCN regenerates the §3.5 closed loop: DCQCN-lite endpoints
// under cut-off vs probabilistic marking.
func BenchmarkDCQCN(b *testing.B) { runExperiment(b, "dcqcn") }

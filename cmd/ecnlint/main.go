// Command ecnlint runs the repository's determinism analyzers (wallclock,
// globalrand, maporder, simtime, shardsafe, poolown, lockguard — see
// internal/analysis) over Go packages.
//
// It supports both invocation styles:
//
//	go run ./cmd/ecnlint ./...        # direct: lint package patterns
//	go run ./cmd/ecnlint -json ./...  # machine-readable diagnostics
//	go vet -vettool=$(which ecnlint) ./...
//
// In direct mode the binary re-executes itself through `go vet -vettool`,
// which delegates package loading, export data and caching to the go
// command — so the two styles always agree. When invoked by go vet (the
// arguments carry a *.cfg unit file, or the -V/-flags protocol queries)
// it behaves as a standard unitchecker-based vet tool.
//
// Direct-mode exit codes distinguish outcomes for CI:
//
//	0  no violations
//	1  one or more analyzer diagnostics
//	2  driver error (unloadable pattern, compile error, bad flag)
//
// With -json, diagnostics are printed to stdout as a JSON array of
// objects with fields "file", "line", "col", "analyzer", "message",
// sorted by position; a clean run prints []. Without -json they are
// printed to stderr as "file:line:col: analyzer: message" lines.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	lint "ecnsharp/internal/analysis"
)

// Direct-mode exit codes. CI keys off the 1-vs-2 distinction: 1 means
// the tree has lint violations, 2 means the lint run itself is broken.
const (
	exitClean      = 0
	exitViolations = 1
	exitDriver     = 2
)

// Diagnostic is one finding in -json output.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		unitchecker.Main(lint.Analyzers()...) // never returns
	}
	os.Exit(runDirect(args, os.Stdout, os.Stderr))
}

// runDirect handles a direct command-line invocation and returns the
// process exit code.
func runDirect(args []string, stdout, stderr io.Writer) int {
	jsonOut := false
	rest := args[:0:0]
	for _, a := range args {
		if a == "-json" || a == "--json" {
			jsonOut = true
			continue
		}
		rest = append(rest, a)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "ecnlint: cannot locate own binary: %v\n", err)
		return exitDriver
	}

	// Always drive go vet in -json mode: unitchecker then exits 0 even
	// with findings, so a nonzero status from go vet can only mean a
	// driver error (bad pattern, compile failure) — exactly the 1-vs-2
	// split the exit codes promise.
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe, "-json"}, rest...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		stderr.Write(out.Bytes())
		fmt.Fprintf(stderr, "ecnlint: driver error: %v\n", err)
		return exitDriver
	}

	diags, errs := parseVetJSON(out.String())
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(stderr, "ecnlint: %s\n", e)
		}
		return exitDriver
	}

	if jsonOut {
		if diags == nil {
			diags = []Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "ecnlint: %v\n", err)
			return exitDriver
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stderr, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return exitViolations
	}
	return exitClean
}

// parseVetJSON decodes the stream go vet -json emits: `# package` comment
// lines interleaved with one pretty-printed JSON object per package,
// each mapping package ID -> analyzer name -> diagnostic list (or an
// {"error": ...} object when an analyzer failed). Both return slices are
// sorted: the JSON trees iterate as Go maps, so without it the output
// order would vary run to run.
func parseVetJSON(output string) (diags []Diagnostic, errs []string) {
	var jsonOnly strings.Builder
	for _, line := range strings.Split(output, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		jsonOnly.WriteString(line)
		jsonOnly.WriteByte('\n')
	}
	dec := json.NewDecoder(strings.NewReader(jsonOnly.String()))
	for {
		var tree map[string]map[string]json.RawMessage
		if err := dec.Decode(&tree); err == io.EOF {
			break
		} else if err != nil {
			errs = append(errs, fmt.Sprintf("cannot decode go vet -json output: %v", err))
			break
		}
		for _, byAnalyzer := range tree {
			for analyzer, raw := range byAnalyzer {
				var entries []struct {
					Posn    string `json:"posn"`
					Message string `json:"message"`
				}
				if err := json.Unmarshal(raw, &entries); err == nil {
					for _, e := range entries {
						file, line, col := splitPosn(e.Posn)
						diags = append(diags, Diagnostic{
							File:     file,
							Line:     line,
							Col:      col,
							Analyzer: analyzer,
							Message:  e.Message,
						})
					}
					continue
				}
				var failure struct {
					Err string `json:"error"`
				}
				if err := json.Unmarshal(raw, &failure); err == nil && failure.Err != "" {
					errs = append(errs, fmt.Sprintf("analyzer %s failed: %s", analyzer, failure.Err))
					continue
				}
				errs = append(errs, fmt.Sprintf("unrecognized go vet -json entry for analyzer %s", analyzer))
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	sort.Strings(errs)
	return diags, errs
}

// splitPosn parses "file:line:col"; the file part may itself contain
// colons, so the split works from the right.
func splitPosn(posn string) (file string, line, col int) {
	file = posn
	i := strings.LastIndexByte(posn, ':')
	if i < 0 {
		return file, 0, 0
	}
	j := strings.LastIndexByte(posn[:i], ':')
	if j < 0 {
		return file, 0, 0
	}
	line, err1 := strconv.Atoi(posn[j+1 : i])
	col, err2 := strconv.Atoi(posn[i+1:])
	if err1 != nil || err2 != nil {
		return posn, 0, 0
	}
	return posn[:j], line, col
}

// vetProtocol reports whether the arguments are a go vet driver
// invocation rather than a direct command line: the unit-config file is
// always the last argument, and the tool-identification queries -V=full
// and -flags come first.
func vetProtocol(args []string) bool {
	if len(args) == 0 {
		return false
	}
	if strings.HasPrefix(args[0], "-V") || args[0] == "-flags" {
		return true
	}
	return strings.HasSuffix(args[len(args)-1], ".cfg")
}

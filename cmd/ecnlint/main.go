// Command ecnlint runs the repository's determinism analyzers (wallclock,
// globalrand, maporder, simtime — see internal/analysis) over Go
// packages.
//
// It supports both invocation styles:
//
//	go run ./cmd/ecnlint ./...        # direct: lint package patterns
//	go vet -vettool=$(which ecnlint) ./...
//
// In direct mode the binary re-executes itself through `go vet -vettool`,
// which delegates package loading, export data and caching to the go
// command — so the two styles always agree. When invoked by go vet (the
// arguments carry a *.cfg unit file, or the -V/-flags protocol queries)
// it behaves as a standard unitchecker-based vet tool. The process exits
// non-zero if any analyzer reports a diagnostic.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	lint "ecnsharp/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		unitchecker.Main(lint.Analyzers()...) // never returns
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecnlint: cannot locate own binary: %v\n", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "ecnlint: %v\n", err)
		os.Exit(1)
	}
}

// vetProtocol reports whether the arguments are a go vet driver
// invocation rather than a direct command line: the unit-config file is
// always the last argument, and the tool-identification queries -V=full
// and -flags come first.
func vetProtocol(args []string) bool {
	if len(args) == 0 {
		return false
	}
	if strings.HasPrefix(args[0], "-V") || args[0] == "-flags" {
		return true
	}
	return strings.HasSuffix(args[len(args)-1], ".cfg")
}

package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestSplitPosn(t *testing.T) {
	cases := []struct {
		posn string
		file string
		line int
		col  int
	}{
		{"/tmp/x/main.go:6:2", "/tmp/x/main.go", 6, 2},
		{"rel/path.go:10:40", "rel/path.go", 10, 40},
		{"odd:name.go:3:1", "odd:name.go", 3, 1},
		{"nocolons", "nocolons", 0, 0},
		{"one:colon", "one:colon", 0, 0},
		{"bad:line:col", "bad:line:col", 0, 0},
	}
	for _, c := range cases {
		file, line, col := splitPosn(c.posn)
		if file != c.file || line != c.line || col != c.col {
			t.Errorf("splitPosn(%q) = %q,%d,%d; want %q,%d,%d",
				c.posn, file, line, col, c.file, c.line, c.col)
		}
	}
}

func TestParseVetJSON(t *testing.T) {
	stream := `# example.com/a
# [example.com/a]
{
	"example.com/a": {
		"wallclock": [
			{
				"posn": "/src/a/a.go:6:2",
				"message": "time.Sleep reads the wall clock"
			}
		]
	}
}
# example.com/b
{
	"example.com/b": {
		"poolown": [
			{
				"posn": "/src/b/b.go:12:9",
				"message": "pooled packet leaks"
			},
			{
				"posn": "/src/b/b.go:20:1",
				"message": "double Put"
			}
		]
	}
}
`
	diags, errs := parseVetJSON(stream)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %+v", len(diags), diags)
	}
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
		if d.File == "" || d.Line == 0 {
			t.Errorf("diagnostic missing position: %+v", d)
		}
	}
	if byAnalyzer["wallclock"] != 1 || byAnalyzer["poolown"] != 2 {
		t.Errorf("wrong analyzer attribution: %v", byAnalyzer)
	}

	_, errs = parseVetJSON(`{"pkg": {"simtime": {"error": "internal failure"}}}`)
	if len(errs) != 1 || !strings.Contains(errs[0], "internal failure") {
		t.Errorf("analyzer failure not surfaced as driver error: %v", errs)
	}
}

// buildLintBinary compiles ecnlint once for the integration tests.
func buildLintBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ecnlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ecnlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a scratch module and returns its directory.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runIn executes the command in dir and returns its exit code plus
// combined output. Scratch modules have no dependencies, so GOFLAGS
// (e.g. -mod=vendor inherited from the repo) must not leak in.
func runIn(t *testing.T, dir string, name string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	if err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
	}
	return cmd.ProcessState.ExitCode(), string(out)
}

// TestExitCodes pins the direct-mode contract (0 clean, 1 violations,
// 2 driver error) and the go vet -vettool conventions the README
// documents.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary build in -short mode")
	}
	bin := buildLintBinary(t)

	clean := writeModule(t, map[string]string{
		"go.mod":  "module cleanmod\n\ngo 1.24\n",
		"main.go": "package main\n\nfunc main() {}\n",
	})
	dirty := writeModule(t, map[string]string{
		"go.mod": "module dirtymod\n\ngo 1.24\n",
		"main.go": `package main

import "time"

func main() {
	time.Sleep(time.Second)
}
`,
	})
	broken := writeModule(t, map[string]string{
		"go.mod":  "module brokenmod\n\ngo 1.24\n",
		"main.go": "package main\n\nfunc main() { undefined() }\n",
	})

	if code, out := runIn(t, clean, bin, "./..."); code != exitClean {
		t.Errorf("clean module: exit %d, want %d\n%s", code, exitClean, out)
	}
	if code, out := runIn(t, clean, bin, "-json", "./..."); code != exitClean || strings.TrimSpace(out) != "[]" {
		t.Errorf("clean module -json: exit %d output %q, want %d and []", code, out, exitClean)
	}

	code, out := runIn(t, dirty, bin, "./...")
	if code != exitViolations {
		t.Errorf("dirty module: exit %d, want %d\n%s", code, exitViolations, out)
	}
	if !strings.Contains(out, "wallclock") || !strings.Contains(out, "main.go:6:2") {
		t.Errorf("dirty module: plain output missing analyzer/position:\n%s", out)
	}

	code, out = runIn(t, dirty, bin, "-json", "./...")
	if code != exitViolations {
		t.Errorf("dirty module -json: exit %d, want %d\n%s", code, exitViolations, out)
	}
	var diags []Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("dirty module -json: output is not a JSON array: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0].Analyzer != "wallclock" || diags[0].Line != 6 ||
		!strings.HasSuffix(diags[0].File, "main.go") || diags[0].Message == "" {
		t.Errorf("dirty module -json: unexpected diagnostics %+v", diags)
	}

	if code, out := runIn(t, broken, bin, "./..."); code != exitDriver {
		t.Errorf("broken module: exit %d, want %d\n%s", code, exitDriver, out)
	}
	if code, out := runIn(t, broken, bin, "-json", "./..."); code != exitDriver {
		t.Errorf("broken module -json: exit %d, want %d\n%s", code, exitDriver, out)
	}

	// The raw vettool conventions the direct mode is built on: plain
	// go vet exits 1 on findings, while -json moves findings to the
	// stream and exits 0 — which is why direct mode can translate a
	// nonzero internal status straight to "driver error".
	if code, out := runIn(t, dirty, "go", "vet", "-vettool="+bin, "./..."); code != 1 {
		t.Errorf("go vet (plain, findings): exit %d, want 1\n%s", code, out)
	}
	if code, out := runIn(t, dirty, "go", "vet", "-vettool="+bin, "-json", "./..."); code != 0 ||
		!strings.Contains(out, `"wallclock"`) {
		t.Errorf("go vet (-json, findings): exit %d, want 0 with findings in stream\n%s", code, out)
	}
	if code, _ := runIn(t, clean, "go", "vet", "-vettool="+bin, "./..."); code != 0 {
		t.Errorf("go vet (plain, clean): exit %d, want 0", code)
	}
}

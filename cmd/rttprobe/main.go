// Command rttprobe regenerates Table 1 / Figure 1: base-RTT statistics of
// the five processing-component combinations (§2.2), sampled from the
// calibrated component model.
//
// Usage:
//
//	rttprobe [-samples n] [-seed s]
package main

import (
	"flag"
	"fmt"

	"ecnsharp/internal/experiments"
)

func main() {
	samples := flag.Int("samples", 3000, "RTT samples per configuration (the paper uses ~3000)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	t, _ := experiments.Table1(*seed, *samples)
	fmt.Println(t)
}

// Command ecnsim runs a single simulation and prints FCT statistics —
// the quickest way to poke at the simulator from the shell.
//
// Usage:
//
//	ecnsim [flags]
//
// Examples:
//
//	ecnsim -scheme ecnsharp -workload websearch -load 0.7
//	ecnsim -scheme red-tail -workload datamining -load 0.5 -flows 500
//	ecnsim -topo leafspine -scheme codel -load 0.4
//	ecnsim -seeds 1,2,3 -parallel 3   # pooled statistics over three seeds
//	ecnsim -trace run.jsonl -trace-events mark,drop -trace-sample 10
//	ecnsim -topo leafspine -faults flaps.json -trace churn.jsonl -trace-events fault,reroute,flow_fail
//	ecnsim -spec sweep.json -parallel 4   # run a JSON sweep spec (same schema ecnsharpd serves)
//	ecnsim -tune tune.json -parallel 4 -tune-out result.json   # auto-tune AQM parameters
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ecnsharp/internal/cache"
	"ecnsharp/internal/experiments"
	"ecnsharp/internal/fault"
	"ecnsharp/internal/harness"
	"ecnsharp/internal/metrics"
	"ecnsharp/internal/rttvar"
	"ecnsharp/internal/sim"
	"ecnsharp/internal/topology"
	"ecnsharp/internal/trace"
	"ecnsharp/internal/transport"
	"ecnsharp/internal/tune"
	"ecnsharp/internal/workload"
)

func main() {
	var (
		schemeName = flag.String("scheme", "ecnsharp", "AQM: ecnsharp, red-tail, red-avg, codel or tcn")
		wlName     = flag.String("workload", "websearch", "workload: websearch or datamining")
		load       = flag.Float64("load", 0.5, "offered load in (0,1]")
		flows      = flag.Int("flows", 400, "number of flows")
		seed       = flag.Int64("seed", 1, "random seed")
		seedsFlag  = flag.String("seeds", "", "comma-separated seeds to pool statistics over (overrides -seed)")
		parallel   = flag.Int("parallel", 0, "worker pool size for per-seed runs (0 = one per CPU, 1 = serial)")
		timeout    = flag.Duration("timeout", 0, "wall-clock limit per individual run (0 = none)")
		progress   = flag.Bool("progress", false, "report each completed run on stderr")
		topo       = flag.String("topo", "star", "topology: star (8-host testbed) or leafspine (128 hosts)")
		shards     = flag.Int("shards", 0,
			"worker goroutines for the sharded conservative-time engine (0 = legacy serial\nengine; results are identical at any positive value — see DESIGN.md)")
		rttMinUS   = flag.Float64("rtt-min", 70, "minimum base RTT in microseconds")
		variation  = flag.Float64("rtt-variation", 3, "RTT variation factor (RTTmax/RTTmin)")
		replayPath = flag.String("replay", "", "replay flows from this flow CSV instead of generating them")
		saveFlows  = flag.String("save-flows", "", "write the generated flows to this flow CSV")
		faultsPath = flag.String("faults", "",
			"inject topology faults from this JSON schedule (link flaps, switch\nfailures, degrades — see internal/fault and DESIGN.md)")
		specPath = flag.String("spec", "",
			"run a JSON sweep spec instead of the flag-built single config — the\nsame schema ecnsharpd accepts (see docs/API.md); ignores the scheme/\nworkload/topology flags")
		tunePath = flag.String("tune", "",
			"run a JSON tune spec: search AQM parameters over the spec's sweep\ngrid (same schema ecnsharpd's POST /v1/tune accepts; see docs/API.md\nand DESIGN.md); ignores the scheme/workload/topology flags")
		tuneOut = flag.String("tune-out", "",
			"with -tune: write the full TuneResult JSON document to this file")
		tuneCache = flag.String("tune-cache", "",
			"with -tune: cache per-cell results in this directory, so re-tuning\noverlapping specs never recomputes a cell")

		traceFile = flag.String("trace", "",
			"stream an event trace to this file (JSONL; a .csv suffix selects CSV);\nwith multiple seeds each job writes <name>.job<N><ext>  (see TRACING.md)")
		traceEvents = flag.String("trace-events", "all",
			"comma-separated event types to trace: enqueue,dequeue,drop,mark,sojourn,cwnd,rate,echo,flow_start,flow_finish,fault,reroute,flow_fail or all")
		traceSample = flag.Int("trace-sample", 1, "keep every n-th selected event (sampling stride)")
	)
	flag.Parse()

	if *specPath != "" {
		runSpec(*specPath, *parallel, *timeout, *progress, *traceFile)
		return
	}
	if *tunePath != "" {
		runTune(*tunePath, *tuneOut, *tuneCache, *parallel, *timeout, *progress)
		return
	}

	seeds := []int64{*seed}
	if *seedsFlag != "" {
		seeds = seeds[:0]
		for _, s := range strings.Split(*seedsFlag, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ecnsim: bad -seeds entry %q\n", s)
				os.Exit(2)
			}
			seeds = append(seeds, v)
		}
	}

	rtt := rttvar.NewVariation(sim.Micros(*rttMinUS), *variation)
	tail, avg, sharp := experiments.DeriveSchemes(rtt, topology.TenGbps)
	var scheme experiments.Scheme
	switch *schemeName {
	case "ecnsharp":
		scheme = sharp
	case "red-tail":
		scheme = tail
	case "red-avg":
		scheme = avg
	case "codel":
		scheme = experiments.CoDelScheme(10*sim.Microsecond, rtt.Percentile(90))
	case "tcn":
		scheme = experiments.TCNScheme(rtt.Percentile(90))
	default:
		fmt.Fprintf(os.Stderr, "ecnsim: unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}

	cdf, err := workload.ByName(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecnsim:", err)
		os.Exit(2)
	}

	cfg := experiments.RunConfig{
		Seed:   *seed,
		Scheme: scheme,
		RTT:    &rtt,
		Shards: *shards,
	}
	switch *topo {
	case "star":
		cfg.Topo = experiments.TopoStar
		cfg.Hosts = 8
		senders := []int{0, 1, 2, 3, 4, 5, 6}
		cfg.FlowGen = func(rng *rand.Rand) []workload.FlowSpec {
			return workload.PoissonFlows(rng, workload.PoissonConfig{
				SizeDist:    cdf,
				Load:        *load,
				CapacityBps: topology.TenGbps,
				Pairs:       workload.StarPairs(senders, 7),
				FlowCount:   *flows,
			})
		}
	case "leafspine":
		cfg.Topo = experiments.TopoLeafSpine
		cfg.Spines, cfg.Leaves, cfg.HostsPerLeaf = 8, 8, 16
		hosts := make([]int, 128)
		for i := range hosts {
			hosts[i] = i
		}
		cfg.FlowGen = func(rng *rand.Rand) []workload.FlowSpec {
			return workload.PoissonFlows(rng, workload.PoissonConfig{
				SizeDist:    cdf,
				Load:        *load,
				CapacityBps: topology.TenGbps,
				RefLinks:    len(hosts),
				Pairs:       workload.RandomPairs(hosts),
				FlowCount:   *flows,
			})
		}
	default:
		fmt.Fprintf(os.Stderr, "ecnsim: unknown topology %q\n", *topo)
		os.Exit(2)
	}

	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecnsim:", err)
			os.Exit(1)
		}
		specs, err := workload.ReadSpecs(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecnsim:", err)
			os.Exit(1)
		}
		cfg.FlowGen = nil
		cfg.Flows = specs
	} else if *saveFlows != "" {
		specs := cfg.FlowGen(rand.New(rand.NewSource(*seed ^ 0x5eed)))
		f, err := os.Create(*saveFlows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecnsim:", err)
			os.Exit(1)
		}
		if err := workload.WriteSpecs(f, specs); err != nil {
			fmt.Fprintln(os.Stderr, "ecnsim:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("flows written to %s (%d flows)\n", *saveFlows, len(specs))
		cfg.FlowGen = nil
		cfg.Flows = specs
	}

	if *faultsPath != "" {
		sched, err := fault.Load(*faultsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecnsim:", err)
			os.Exit(2)
		}
		cfg.Faults = sched
		// Bound RTO retries so a schedule that permanently severs a path
		// fails its flows (reported below) instead of hanging the run.
		cfg.Transport = transport.DefaultConfig()
		cfg.Transport.MaxConsecTimeouts = 20
	}

	// Event tracing: one writer per run. Under -seeds/-parallel every job
	// gets its own file named by its harness job id, so concurrent runs
	// never interleave writes; the files are flushed after all runs finish.
	var (
		traceMu    sync.Mutex
		traceFlush []func() error
		tracePaths []string
	)
	if *traceFile != "" {
		mask, err := trace.ParseMask(*traceEvents)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecnsim:", err)
			os.Exit(2)
		}
		cfg.NewTracer = func(ctx context.Context, runSeed int64) trace.Tracer {
			path := *traceFile
			if len(seeds) > 1 {
				id, ok := harness.JobID(ctx)
				if !ok {
					id = int(runSeed)
				}
				path = jobTracePath(path, id)
			}
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ecnsim:", err)
				return nil
			}
			var (
				t     trace.Tracer
				flush func() error
			)
			if strings.HasSuffix(path, ".csv") {
				w := trace.NewCSVWriter(f)
				t, flush = w, w.Flush
			} else {
				w := trace.NewJSONLWriter(f)
				t, flush = w, w.Flush
			}
			traceMu.Lock()
			traceFlush = append(traceFlush, func() error {
				if err := flush(); err != nil {
					f.Close()
					return err
				}
				return f.Close()
			})
			tracePaths = append(tracePaths, path)
			traceMu.Unlock()
			return trace.NewFilter(t, mask, *traceSample)
		}
	}

	sc := experiments.Scale{Seeds: seeds, Parallel: *parallel, Timeout: *timeout}
	if *progress {
		sc.Progress = func(p harness.Progress) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%v)\n",
				p.Done, p.Total, p.Label, p.Elapsed.Round(time.Millisecond))
		}
	}
	r := experiments.RunSeeds(sc, cfg)
	for _, flush := range traceFlush {
		if err := flush(); err != nil {
			fmt.Fprintln(os.Stderr, "ecnsim: trace:", err)
			os.Exit(1)
		}
	}
	s := r.Stats
	fmt.Printf("scheme    %s\n", scheme.Label)
	fmt.Printf("workload  %s @ %.0f%% load, %d flows, RTT %v-%v\n",
		*wlName, *load*100, r.Injected, rtt.Min, rtt.Max)
	if len(seeds) > 1 {
		fmt.Printf("pooled    %d seeds %v\n", len(seeds), seeds)
	}
	if cfg.Faults != nil {
		fmt.Printf("faults    %s\n", *faultsPath)
	}
	fmt.Printf("completed %d/%d flows", r.Completed, r.Injected)
	if r.Failed > 0 {
		fmt.Printf(" (%d failed by RTO exhaustion)", r.Failed)
	}
	fmt.Printf("\n\n")
	fmt.Printf("FCT overall avg      %10.1f us (%d flows)\n", s.OverallAvg, s.OverallCount)
	fmt.Printf("FCT short (<=100KB)  %10.1f us avg, %10.1f us p99 (%d flows)\n",
		s.ShortAvg, s.ShortP99, s.ShortCount)
	fmt.Printf("FCT large (>=10MB)   %10.1f us avg (%d flows)\n", s.LargeAvg, s.LargeCount)
	fmt.Printf("\nswitch drops %d, CE marks %d, timeouts %d, retransmits %d\n",
		r.Drops, r.Marks, r.Timeouts, r.Retransmits)
	if len(tracePaths) > 0 {
		sort.Strings(tracePaths)
		fmt.Printf("event trace: %s\n", strings.Join(tracePaths, ", "))
	}
}

// jobTracePath derives a per-job trace file name by inserting ".job<id>"
// before the extension: run.jsonl -> run.job3.jsonl.
func jobTracePath(path string, id int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.job%d%s", strings.TrimSuffix(path, ext), id, ext)
}

// runSpec executes a JSON sweep spec through the exact spec→cell→result
// path ecnsharpd caches (experiments.Cell.Run), pools the per-seed results
// per load point, and prints one stats block per load. When the spec
// requests tracing and -trace names a file, each cell's captured JSONL
// stream is written to <name>.job<N><ext>.
func runSpec(path string, parallel int, timeout time.Duration, progress bool, traceFile string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecnsim:", err)
		os.Exit(1)
	}
	spec, err := experiments.ParseSweepSpec(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecnsim:", err)
		os.Exit(2)
	}
	cells := spec.Cells()
	jobs := make([]harness.Job, len(cells))
	for i, cell := range cells {
		cell := cell
		jobs[i] = harness.Job{
			Label: fmt.Sprintf("%s load=%.2f seed=%d", cell.Scheme, cell.Load, cell.Seed),
			Run:   func(ctx context.Context) (any, error) { return cell.Run(ctx) },
		}
	}
	opts := harness.Options{Parallel: parallel, Timeout: timeout}
	if progress {
		opts.OnDone = func(p harness.Progress) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%v)\n",
				p.Done, p.Total, p.Label, p.Elapsed.Round(time.Millisecond))
		}
	}
	res, _ := harness.Execute(context.Background(), jobs, opts)
	results := make([]experiments.CellResult, len(res))
	for i, r := range res {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "ecnsim: %s: %v\n", r.Label, r.Err)
			os.Exit(1)
		}
		results[i] = r.Value.(experiments.CellResult)
	}

	fmt.Printf("sweep     %s: %s/%s on %s, %d flows, RTT %vus x%v\n",
		path, spec.Scheme, spec.Workload, spec.Topo, spec.Flows, spec.RTTMinUS, spec.RTTVariation)
	fmt.Printf("grid      %d loads x %d seeds = %d cells\n\n", len(spec.Loads), len(spec.Seeds), len(cells))
	for li, load := range spec.Loads {
		pool := metrics.NewFCTCollector()
		var merged experiments.CellResult
		for si := range spec.Seeds {
			r := results[li*len(spec.Seeds)+si]
			pool.Merge(r.Collector())
			merged.Drops += r.Drops
			merged.Marks += r.Marks
			merged.Timeouts += r.Timeouts
			merged.Retransmits += r.Retransmits
			merged.Completed += r.Completed
			merged.Injected += r.Injected
		}
		s := pool.Stats()
		fmt.Printf("load %.0f%%  completed %d/%d\n", load*100, merged.Completed, merged.Injected)
		fmt.Printf("  FCT overall avg      %10.1f us (%d flows)\n", s.OverallAvg, s.OverallCount)
		fmt.Printf("  FCT short (<=100KB)  %10.1f us avg, %10.1f us p99 (%d flows)\n",
			s.ShortAvg, s.ShortP99, s.ShortCount)
		fmt.Printf("  FCT large (>=10MB)   %10.1f us avg (%d flows)\n", s.LargeAvg, s.LargeCount)
		fmt.Printf("  drops %d, marks %d, timeouts %d, retransmits %d\n\n",
			merged.Drops, merged.Marks, merged.Timeouts, merged.Retransmits)
	}

	if traceFile != "" && spec.Trace != nil {
		var paths []string
		for i, r := range results {
			if r.TraceJSONL == "" {
				continue
			}
			p := jobTracePath(traceFile, i)
			if err := os.WriteFile(p, []byte(r.TraceJSONL), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "ecnsim: trace:", err)
				os.Exit(1)
			}
			paths = append(paths, p)
		}
		sort.Strings(paths)
		fmt.Printf("event trace: %s\n", strings.Join(paths, ", "))
	}
}

// runTune executes a JSON tune spec: the searcher proposes candidate
// parameter vectors, every candidate is scored on the spec's (load, seed)
// cell grid, and the winner is printed next to the paper-default anchor.
// With -tune-cache, per-cell results are content-addressed on disk so
// re-tuning never recomputes a cell.
func runTune(path, outPath, cacheDir string, parallel int, timeout time.Duration, progress bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecnsim:", err)
		os.Exit(1)
	}
	spec, err := tune.ParseSpec(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecnsim:", err)
		os.Exit(2)
	}
	opts := tune.Options{Parallel: parallel, Timeout: timeout}
	if cacheDir != "" {
		store, err := cache.Open(cacheDir, cache.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecnsim:", err)
			os.Exit(1)
		}
		opts.Store = store
	}
	if progress {
		opts.OnProgress = func(p tune.Progress) {
			if p.Type != "eval" {
				return
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] round %d cand %d score %.1f (best %.1f, %d/%d cells cached)\n",
				p.Evals, p.Budget, p.Round, p.Index, p.Score, p.BestScore, p.CachedCells, p.Cells)
		}
	}
	res, err := tune.Run(context.Background(), spec, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecnsim:", err)
		os.Exit(1)
	}

	fmt.Printf("tune      %s: %s over %d params, budget %d, seed %d\n",
		path, spec.Searcher, spec.Space.NumParams(), spec.Budget, spec.Seed)
	fmt.Printf("grid      %s/%s on %s, %d loads x %d seeds per candidate\n",
		spec.Sweep.Scheme, spec.Sweep.Workload, spec.Sweep.Topo, len(spec.Sweep.Loads), len(spec.Sweep.Seeds))
	fmt.Printf("evals     %d candidates in %d rounds\n\n", len(res.Evals), res.Rounds)
	printVec := func(label string, e tune.Eval) {
		fmt.Printf("%s  objective(%s) = %.1f\n", label, spec.Objective, e.Score)
		for p, v := range e.Vector {
			fmt.Printf("  %-28s %10.1f\n", spec.Space.ParamName(p), v)
		}
	}
	printVec("default", res.Default)
	fmt.Println()
	printVec("tuned  ", res.Best)
	fmt.Printf("\nimprovement %.2fx (default/best)\n", res.Improvement)

	if outPath != "" {
		b, err := res.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecnsim:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(outPath, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ecnsim:", err)
			os.Exit(1)
		}
		fmt.Printf("result written to %s\n", outPath)
	}
}

// Command ecnsharpd is the ecnsharp experiment daemon: an HTTP/JSON
// service that accepts sweep specs (the same schema ecnsim -spec reads),
// executes them on a worker pool, and serves results from a
// content-addressed on-disk cache so repeated submissions are
// byte-identical disk reads instead of recomputation.
//
// See docs/API.md for the endpoint reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ecnsharp/internal/cache"
	"ecnsharp/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	cacheDir := flag.String("cache-dir", "", "result cache directory (default: ecnsharp-cache under the OS temp dir)")
	cacheMaxMB := flag.Int64("cache-max-mb", 512, "cache size budget in MiB (0 = unbounded)")
	parallel := flag.Int("parallel", 0, "worker pool size per sweep (0 = one per CPU)")
	timeout := flag.Duration("timeout", 0, "per-cell computation timeout (0 = none)")
	flag.Parse()

	dir := *cacheDir
	if dir == "" {
		dir = os.TempDir() + "/ecnsharp-cache"
	}
	store, err := cache.Open(dir, cache.Options{MaxBytes: *cacheMaxMB << 20})
	if err != nil {
		log.Fatalf("ecnsharpd: open cache: %v", err)
	}
	srv, err := service.New(service.Config{
		Store:    store,
		Parallel: *parallel,
		Timeout:  *timeout,
	})
	if err != nil {
		log.Fatalf("ecnsharpd: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		log.Printf("ecnsharpd: listening on http://%s (cache %s)", *addr, dir)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("ecnsharpd: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "ecnsharpd: shutting down")
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("ecnsharpd: shutdown: %v", err)
	}
}

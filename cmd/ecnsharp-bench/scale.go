package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"ecnsharp/internal/experiments"
)

// scaleResult is one (hosts, shards) cell of BENCH_scale.json.
type scaleResult struct {
	Hosts          int     `json:"hosts"`
	Shards         int     `json:"shards"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	WallSeconds    float64 `json:"wall_seconds"`
	BytesPerHost   float64 `json:"bytes_per_host"`
	CompletedFlows int     `json:"completed_flows"`
}

// scaleReport is the schema of BENCH_scale.json.
type scaleReport struct {
	Note string `json:"note"`
	// NumCPU records the runner class: the 4-shard speedup gate only
	// applies when the machine can actually run 4 workers.
	NumCPU int                    `json:"num_cpu"`
	Cells  map[string]scaleResult `json:"cells"`
}

func scaleKey(hosts, shards int) string {
	return fmt.Sprintf("hosts=%d/shards=%d", hosts, shards)
}

// parseIntList parses "1024,10240" into ints.
func parseIntList(s, flagName string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -%s entry %q", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// runScaleCell executes one benchmark cell and measures it. Memory is the
// post-run live heap after a forced GC divided by the host count — the
// steady-state footprint of the fabric plus flow bookkeeping, not transient
// garbage — and events/sec is engine-processed events over wall clock.
func runScaleCell(cell experiments.ScaleCell, shards int) scaleResult {
	cfg := experiments.ScaleCellConfig(cell, shards)
	start := time.Now() //lint:allow wallclock -- measures real benchmark runtime for the JSON report
	res := experiments.Run(cfg)
	wall := time.Since(start).Seconds() //lint:allow wallclock -- measures real benchmark runtime for the JSON report

	events := res.Net.Shard.Processed()
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	out := scaleResult{
		Hosts:          cell.Hosts,
		Shards:         shards,
		Events:         events,
		EventsPerSec:   float64(events) / wall,
		WallSeconds:    wall,
		BytesPerHost:   float64(ms.HeapAlloc) / float64(cell.Hosts),
		CompletedFlows: res.Completed,
	}
	if res.Completed != res.Injected {
		fmt.Fprintf(os.Stderr, "warning: %s completed %d/%d flows\n",
			scaleKey(cell.Hosts, shards), res.Completed, res.Injected)
	}
	return out
}

// runScaleSuite measures every (hosts, shards) cell, writes the report to
// out, and (when baseline is non-empty) gates against it: bytes/host may
// not grow beyond tol, and on a runner with >= 4 CPUs the 4-shard cell
// must reach 1.5x the 1-shard events/sec for the same host count (on
// narrower machines the speedup is reported but informational — one core
// cannot exhibit parallelism).
func runScaleSuite(out string, hostTiers, shardCounts []int, baseline string, tol float64) error {
	rep := scaleReport{
		Note: "Regenerate with: go run ./cmd/ecnsharp-bench -scalejson BENCH_scale.json " +
			"-scalehosts 1024,10240 -scaleshards 1,4 (see EXPERIMENTS.md; wall clock and " +
			"events/sec are hardware-dependent, bytes/host is not)",
		NumCPU: runtime.NumCPU(),
		Cells:  make(map[string]scaleResult),
	}
	for _, hosts := range hostTiers {
		cell, err := experiments.ScaleCellByHosts(hosts)
		if err != nil {
			return err
		}
		for _, shards := range shardCounts {
			if shards < 1 {
				return fmt.Errorf("-scaleshards entries must be >= 1 (got %d)", shards)
			}
			r := runScaleCell(cell, shards)
			rep.Cells[scaleKey(hosts, shards)] = r
			fmt.Printf("%-24s %12.0f events/s %10.2f s wall %10.0f B/host (%d events)\n",
				scaleKey(hosts, shards), r.EventsPerSec, r.WallSeconds, r.BytesPerHost, r.Events)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	reportSpeedups(rep)
	if baseline == "" {
		return nil
	}
	return compareScaleBaseline(rep, baseline, tol)
}

// reportSpeedups prints the shards=4 over shards=1 events/sec ratio per
// host tier, when both cells were measured.
func reportSpeedups(rep scaleReport) {
	keys := make([]string, 0, len(rep.Cells))
	for k := range rep.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r := rep.Cells[k]
		if r.Shards != 1 {
			continue
		}
		wide, ok := rep.Cells[scaleKey(r.Hosts, 4)]
		if !ok {
			continue
		}
		fmt.Printf("hosts=%d: shards=4 speedup %.2fx over shards=1 (on %d CPUs)\n",
			r.Hosts, wide.EventsPerSec/r.EventsPerSec, rep.NumCPU)
	}
}

// compareScaleBaseline gates the fresh report against the committed one.
func compareScaleBaseline(rep scaleReport, baseline string, tol float64) error {
	buf, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base scaleReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baseline, err)
	}
	var failures []string
	keys := make([]string, 0, len(base.Cells))
	for k := range base.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		want := base.Cells[k]
		got, ok := rep.Cells[k]
		if !ok {
			continue // a smoke run measures a subset of the baseline cells
		}
		if limit := want.BytesPerHost * (1 + tol); got.BytesPerHost > limit {
			failures = append(failures, fmt.Sprintf("%s: %.0f B/host, baseline %.0f (+%.0f%% > %.0f%% tolerance)",
				k, got.BytesPerHost, want.BytesPerHost, 100*(got.BytesPerHost/want.BytesPerHost-1), 100*tol))
		}
		if got.Events != want.Events {
			failures = append(failures, fmt.Sprintf("%s: processed %d events, baseline %d (the cell is deterministic; a drift means the simulation changed)",
				k, got.Events, want.Events))
		}
	}
	fresh := make([]string, 0, len(rep.Cells))
	for k := range rep.Cells {
		fresh = append(fresh, k)
	}
	sort.Strings(fresh)
	for _, k := range fresh {
		got := rep.Cells[k]
		if got.Shards != 1 {
			continue
		}
		wide, ok := rep.Cells[scaleKey(got.Hosts, 4)]
		if !ok {
			continue
		}
		speedup := wide.EventsPerSec / got.EventsPerSec
		if rep.NumCPU >= 4 && speedup < 1.5 {
			failures = append(failures, fmt.Sprintf("hosts=%d: shards=4 speedup %.2fx < 1.5x on a %d-CPU runner",
				got.Hosts, speedup, rep.NumCPU))
		} else if rep.NumCPU < 4 {
			fmt.Printf("note: hosts=%d speedup %.2fx not gated (%d CPUs < 4)\n", got.Hosts, speedup, rep.NumCPU)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		return fmt.Errorf("%d scale regression(s) against %s", len(failures), baseline)
	}
	fmt.Printf("all measured cells within tolerance of %s\n", baseline)
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"ecnsharp/internal/bench"
	"ecnsharp/internal/experiments"
)

// benchSpec names one runtime benchmark; the order here is the order the
// suite runs and reports in.
type benchSpec struct {
	name string
	fn   func(*testing.B)
}

func benchSuite() []benchSpec {
	return []benchSpec{
		{"ScheduleAndRun", bench.ScheduleAndRun},
		{"NestedAfter", bench.NestedAfter},
		{"EgressFIFO", bench.EgressFIFO},
		{"BulkTransfer", bench.BulkTransfer},
		{"IncastBurst", bench.IncastBurst},
		{"FlapStorm", bench.FlapStorm},
	}
}

// benchResult is one benchmark's measurement in BENCH_runtime.json.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// benchReport is the schema of BENCH_runtime.json.
type benchReport struct {
	Note       string                 `json:"note"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
	// WallClockSeconds records end-to-end experiment sweeps; informational
	// only (never gated: wall clock is too noisy across machines).
	WallClockSeconds map[string]float64 `json:"wall_clock_seconds"`
}

// runBenchSuite measures the runtime benchmark suite, writes it to out,
// and (when baseline is non-empty) fails on regressions beyond tol.
func runBenchSuite(out, baseline string, tol float64) error {
	rep := benchReport{
		Note: "Regenerate with: go run ./cmd/ecnsharp-bench -json BENCH_runtime.json " +
			"(see README.md; numbers are hardware-dependent, refresh on the CI runner class)",
		Benchmarks:       make(map[string]benchResult),
		WallClockSeconds: make(map[string]float64),
	}
	for _, s := range benchSuite() {
		r := testing.Benchmark(s.fn)
		rep.Benchmarks[s.name] = benchResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		fmt.Printf("%-16s %12.1f ns/op %8d allocs/op %10d B/op (%d iters)\n",
			s.name, rep.Benchmarks[s.name].NsPerOp, r.AllocsPerOp(), r.AllocedBytesPerOp(), r.N)
	}

	// Wall-clock smoke sweep: the fig6 FCT-across-loads experiment at
	// smoke scale exercises the full harness (workload generation, many
	// parallel runs, metric aggregation) end to end.
	e, err := experiments.ByID("fig6")
	if err != nil {
		return err
	}
	sc := experiments.SmokeScale()
	sc.Parallel = 1
	start := time.Now() //lint:allow wallclock -- measures real harness runtime for the JSON report
	e.Run(sc)
	rep.WallClockSeconds["fig6_smoke"] = time.Since(start).Seconds() //lint:allow wallclock -- measures real harness runtime for the JSON report
	fmt.Printf("%-16s %12.2f s wall clock\n", "fig6_smoke", rep.WallClockSeconds["fig6_smoke"])

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if baseline == "" {
		return nil
	}
	return compareBaseline(rep, baseline, tol)
}

// compareBaseline checks fresh results against a committed baseline:
// ns/op may be up to tol slower; allocs/op must not exceed the baseline.
// Improvements pass but are reported so the baseline gets refreshed.
func compareBaseline(rep benchReport, baseline string, tol float64) error {
	buf, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baseline, err)
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := rep.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured", name))
			continue
		}
		if got.AllocsPerOp > want.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, baseline %d (allocation counts are exact)",
				name, got.AllocsPerOp, want.AllocsPerOp))
		} else if got.AllocsPerOp < want.AllocsPerOp {
			fmt.Printf("note: %s improved to %d allocs/op (baseline %d); refresh the baseline\n",
				name, got.AllocsPerOp, want.AllocsPerOp)
		}
		if limit := want.NsPerOp * (1 + tol); got.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op, baseline %.1f (+%.0f%% > %.0f%% tolerance)",
				name, got.NsPerOp, want.NsPerOp, 100*(got.NsPerOp/want.NsPerOp-1), 100*tol))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(failures), baseline)
	}
	fmt.Printf("all %d benchmarks within tolerance of %s\n", len(names), baseline)
	return nil
}

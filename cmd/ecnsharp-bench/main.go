// Command ecnsharp-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ecnsharp-bench [-scale quick|full|smoke] [-parallel N] [-list] [ids...]
//	ecnsharp-bench -json FILE [-compare BASELINE] [-tolerance F]
//
// With no ids, every experiment runs in paper order. Each experiment
// prints the rows/series of the corresponding paper artifact; EXPERIMENTS.md
// records how to read them against the paper's numbers. Independent
// (config, seed) runs execute on a worker pool; the tables are identical
// at any -parallel setting.
//
// With -json the command instead runs the runtime benchmark suite
// (internal/bench, the same bodies `go test -bench` runs) plus a
// wall-clock smoke sweep of the fig6 experiment, and writes the results
// as JSON. -compare additionally checks them against a committed
// baseline (BENCH_runtime.json at the repository root): ns/op may drift
// up to -tolerance (relative, default 0.10) before the run fails;
// allocs/op must not exceed the baseline at all. Wall-clock numbers are
// recorded but never gated: they exist for trend-watching, not for CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ecnsharp/internal/experiments"
	"ecnsharp/internal/harness"
	_ "ecnsharp/internal/tune" // registers the tuned-vs-default experiment
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick, full or smoke")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	parallel := flag.Int("parallel", 0, "worker pool size for independent runs (0 = one per CPU, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "wall-clock limit per individual run, e.g. 2m (0 = none)")
	progress := flag.Bool("progress", false, "report each completed run on stderr")
	jsonOut := flag.String("json", "", "run the runtime benchmark suite and write results to this file")
	compare := flag.String("compare", "", "with -json/-scalejson: fail when results regress beyond the committed baseline in this file")
	tolerance := flag.Float64("tolerance", 0.10, "with -compare: allowed relative slowdown/growth before failing")
	scaleJSON := flag.String("scalejson", "", "run the sharded scale benchmark and write results to this file")
	scaleHosts := flag.String("scalehosts", "1024,10240", "with -scalejson: comma-separated host tiers (1024, 10240, 100000)")
	scaleShards := flag.String("scaleshards", "1,4", "with -scalejson: comma-separated shard (worker) counts per tier")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ecnsharp-bench [-scale quick|full|smoke] [-parallel N] [-list] [ids...]\n")
		fmt.Fprintf(os.Stderr, "       ecnsharp-bench -json FILE [-compare BASELINE] [-tolerance F]\n")
		fmt.Fprintf(os.Stderr, "       ecnsharp-bench -scalejson FILE [-scalehosts T,..] [-scaleshards N,..] [-compare BASELINE]\n\n")
		fmt.Fprintf(os.Stderr, "Regenerates the evaluation artifacts of the ECN# paper (CoNEXT'19).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *jsonOut != "" {
		if err := runBenchSuite(*jsonOut, *compare, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "ecnsharp-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *scaleJSON != "" {
		tiers, err := parseIntList(*scaleHosts, "scalehosts")
		if err == nil {
			var shards []int
			shards, err = parseIntList(*scaleShards, "scaleshards")
			if err == nil {
				err = runScaleSuite(*scaleJSON, tiers, shards, *compare, *tolerance)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecnsharp-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Brief)
		}
		return
	}

	var sc experiments.Scale
	switch *scaleFlag {
	case "quick":
		sc = experiments.QuickScale()
	case "full":
		sc = experiments.FullScale()
	case "smoke":
		sc = experiments.SmokeScale()
	default:
		fmt.Fprintf(os.Stderr, "ecnsharp-bench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	sc.Parallel = *parallel
	sc.Timeout = *timeout
	if *progress {
		sc.Progress = func(p harness.Progress) {
			status := ""
			if p.Err != nil {
				status = " FAILED: " + p.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%v)%s\n",
				p.Done, p.Total, p.Label, p.Elapsed.Round(time.Millisecond), status)
		}
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}

	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecnsharp-bench:", err)
			os.Exit(2)
		}
		start := time.Now() //lint:allow wallclock -- reports real elapsed bench time to the operator
		for _, tb := range e.Run(sc) {
			fmt.Println(tb)
			if *csvDir != "" {
				path, err := tb.SaveCSV(*csvDir)
				if err != nil {
					fmt.Fprintln(os.Stderr, "ecnsharp-bench: writing CSV:", err)
					os.Exit(1)
				}
				fmt.Printf("[csv: %s]\n", path)
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond)) //lint:allow wallclock -- reports real elapsed bench time to the operator
	}
}
